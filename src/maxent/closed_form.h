// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_CLOSED_FORM_H_
#define PME_MAXENT_CLOSED_FORM_H_

#include <vector>

#include "anonymize/bucketized_table.h"
#include "constraints/term_index.h"

namespace pme::maxent {

/// The Theorem-5 closed form: with no background knowledge, the maximum
/// entropy joint distribution factorizes within every bucket,
///
///   P(q, s, b) = P(q, b) · P(s, b) / P(b),
///
/// which is exactly the uniform "portion of S in the bucket" rule (Eq. 1
/// / Eq. 9) used by the pre-background-knowledge literature. Returns the
/// term probabilities over the TermIndex numbering.
std::vector<double> ClosedFormNoKnowledge(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index);

/// Closed form restricted to one bucket: writes only the variables of
/// bucket `b` into `p` (the rest untouched).
void ClosedFormBucket(const anonymize::BucketizedTable& table,
                      const constraints::TermIndex& index, uint32_t b,
                      std::vector<double>* p);

}  // namespace pme::maxent

#endif  // PME_MAXENT_CLOSED_FORM_H_
