#include "maxent/problem.h"

#include <algorithm>
#include <cmath>

namespace pme::maxent {

Result<MaxEntProblem> BuildProblem(
    const constraints::ConstraintSystem& system) {
  PME_ASSIGN_OR_RETURN(auto matrices, system.ToMatrices());
  MaxEntProblem p;
  p.num_vars = system.num_variables();
  p.eq = std::move(matrices.eq);
  p.eq_rhs.assign(matrices.eq_rhs.begin(), matrices.eq_rhs.end());
  p.ineq = std::move(matrices.ineq);
  p.ineq_rhs.assign(matrices.ineq_rhs.begin(), matrices.ineq_rhs.end());
  return p;
}

std::vector<double> PresolvedProblem::Restore(
    const std::vector<double>& reduced_p) const {
  std::vector<double> full(var_map.size(), 0.0);
  for (size_t i = 0; i < var_map.size(); ++i) {
    full[i] = var_map[i] >= 0 ? reduced_p[static_cast<size_t>(var_map[i])]
                              : fixed_values[i];
  }
  return full;
}

namespace {

struct WorkRow {
  // Presolve scratch: inside a block-solve ArenaScope these arrays come
  // from the pool worker's arena.
  ScratchVector<uint32_t> vars;
  ScratchVector<double> coefs;
  double rhs = 0.0;
  bool is_eq = true;
  bool active = true;
};

ScratchVector<WorkRow> ExtractRows(const linalg::SparseMatrix& m,
                                   kernels::ConstSpan rhs, bool is_eq) {
  ScratchVector<WorkRow> rows(m.rows());
  const auto& offsets = m.row_offsets();
  const auto& cols = m.col_indices();
  const auto& values = m.values();
  for (size_t r = 0; r < m.rows(); ++r) {
    WorkRow& row = rows[r];
    row.rhs = rhs[r];
    row.is_eq = is_eq;
    for (size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      row.vars.push_back(cols[k]);
      row.coefs.push_back(values[k]);
    }
  }
  return rows;
}

}  // namespace

Result<PresolvedProblem> Presolve(const MaxEntProblem& problem, double tol) {
  ScratchVector<WorkRow> rows = ExtractRows(problem.eq, problem.eq_rhs, true);
  {
    auto ineq_rows = ExtractRows(problem.ineq, problem.ineq_rhs, false);
    rows.insert(rows.end(), std::make_move_iterator(ineq_rows.begin()),
                std::make_move_iterator(ineq_rows.end()));
  }

  ScratchVector<char> is_fixed(problem.num_vars, 0);
  ScratchVector<double> fixed_value(problem.num_vars, 0.0);

  auto fix = [&](uint32_t var, double value) {
    is_fixed[var] = 1;
    fixed_value[var] = std::max(value, 0.0);
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (WorkRow& row : rows) {
      if (!row.active) continue;
      // Substitute fixed variables and drop zero coefficients.
      size_t w = 0;
      for (size_t i = 0; i < row.vars.size(); ++i) {
        if (row.coefs[i] == 0.0) continue;
        if (is_fixed[row.vars[i]]) {
          row.rhs -= row.coefs[i] * fixed_value[row.vars[i]];
          continue;
        }
        row.vars[w] = row.vars[i];
        row.coefs[w] = row.coefs[i];
        ++w;
      }
      row.vars.resize(w);
      row.coefs.resize(w);

      if (row.vars.empty()) {
        if (row.is_eq ? std::fabs(row.rhs) > tol : row.rhs < -tol) {
          return Status::Infeasible(
              "presolve: constraint reduced to an unsatisfiable constant");
        }
        row.active = false;
        changed = true;
        continue;
      }

      const bool all_pos =
          std::all_of(row.coefs.begin(), row.coefs.end(),
                      [](double c) { return c > 0.0; });
      const bool all_neg =
          std::all_of(row.coefs.begin(), row.coefs.end(),
                      [](double c) { return c < 0.0; });

      if (row.is_eq) {
        if (std::fabs(row.rhs) <= tol && (all_pos || all_neg)) {
          // Zero forcing: a signed combination of nonnegative variables
          // equal to zero pins every variable to zero.
          for (uint32_t v : row.vars) fix(v, 0.0);
          row.active = false;
          changed = true;
        } else if (row.vars.size() == 1) {
          const double value = row.rhs / row.coefs[0];
          if (value < -tol) {
            return Status::Infeasible(
                "presolve: a probability term is forced negative");
          }
          fix(row.vars[0], value);
          row.active = false;
          changed = true;
        }
      } else {
        // Inequality  a·p <= rhs  with a > 0 elementwise.
        if (all_pos) {
          if (row.rhs < -tol) {
            return Status::Infeasible(
                "presolve: inequality bound below zero over nonnegative "
                "terms");
          }
          if (row.rhs <= tol) {
            for (uint32_t v : row.vars) fix(v, 0.0);
            row.active = false;
            changed = true;
          }
        }
      }
    }
  }

  // Renumber surviving variables.
  PresolvedProblem out;
  out.var_map.assign(problem.num_vars, -1);
  out.fixed_values.assign(fixed_value.begin(), fixed_value.end());
  size_t next = 0;
  for (size_t v = 0; v < problem.num_vars; ++v) {
    if (is_fixed[v]) {
      ++out.num_fixed;
    } else {
      out.var_map[v] = static_cast<int64_t>(next++);
    }
  }

  // Rebuild surviving rows. `rows` holds the eq rows first then the
  // ineq rows, each in original order, so the row maps fall out of the
  // same pass that emits the reduced matrices.
  out.eq_row_map.assign(problem.eq.rows(), -1);
  out.ineq_row_map.assign(problem.ineq.rows(), -1);
  linalg::SparseMatrixBuilder eq_builder(next);
  linalg::SparseMatrixBuilder ineq_builder(next);
  for (size_t r = 0; r < rows.size(); ++r) {
    const WorkRow& row = rows[r];
    if (!row.active) continue;
    ScratchVector<uint32_t> vars(row.vars.size());
    for (size_t i = 0; i < row.vars.size(); ++i) {
      vars[i] = static_cast<uint32_t>(out.var_map[row.vars[i]]);
    }
    if (row.is_eq) {
      out.eq_row_map[r] = static_cast<int64_t>(out.reduced.eq_rhs.size());
      PME_RETURN_IF_ERROR(
          eq_builder.AddRow(vars.data(), row.coefs.data(), vars.size()));
      out.reduced.eq_rhs.push_back(row.rhs);
    } else {
      out.ineq_row_map[r - problem.eq.rows()] =
          static_cast<int64_t>(out.reduced.ineq_rhs.size());
      PME_RETURN_IF_ERROR(
          ineq_builder.AddRow(vars.data(), row.coefs.data(), vars.size()));
      out.reduced.ineq_rhs.push_back(row.rhs);
    }
  }
  out.reduced.num_vars = next;
  PME_ASSIGN_OR_RETURN(out.reduced.eq, eq_builder.Build());
  PME_ASSIGN_OR_RETURN(out.reduced.ineq, ineq_builder.Build());
  return out;
}

}  // namespace pme::maxent
