// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_PROBLEM_H_
#define PME_MAXENT_PROBLEM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "constraints/system.h"
#include "linalg/sparse_matrix.h"

namespace pme::maxent {

/// The optimization problem of Definition 3.1 in matrix form:
///
///   maximize  H(p) = −Σ_i p_i ln p_i
///   subject to  eq · p = eq_rhs,   ineq · p ≤ ineq_rhs,   p ≥ 0.
///
/// Variables are the materialized probability terms P(q, s, b).
struct MaxEntProblem {
  size_t num_vars = 0;
  linalg::SparseMatrix eq;
  // Arena-aware (like the matrices' CSR arrays): a problem assembled
  // inside an ArenaScope is per-block scratch and dies with the scope.
  ScratchVector<double> eq_rhs;
  linalg::SparseMatrix ineq;
  ScratchVector<double> ineq_rhs;

  bool has_inequalities() const { return ineq.rows() > 0; }
  size_t num_constraints() const { return eq.rows() + ineq.rows(); }
};

/// Converts an assembled constraint system into matrix form.
Result<MaxEntProblem> BuildProblem(const constraints::ConstraintSystem& system);

/// Structural presolve. Two reductions run to fixpoint:
///
///  1. Zero forcing: an equality row with all-nonnegative coefficients and
///     zero RHS forces every variable it touches to 0. This is how
///     statements like P(Breast Cancer | male) = 0 are resolved *exactly*
///     (the dual alone would need λ → −∞ to express a hard zero).
///  2. Singleton substitution: an equality row with one remaining variable
///     pins it to rhs/coef; the value is substituted into every other row.
///
/// Detects infeasibility (negative pinned probability, or an emptied row
/// with nonzero RHS). The reduced problem excludes satisfied rows and
/// fixed variables; `Restore` maps a reduced solution back to the full
/// variable space.
struct PresolvedProblem {
  MaxEntProblem reduced;
  /// original var -> reduced var id, or -1 when the variable was fixed.
  std::vector<int64_t> var_map;
  /// Value of each fixed variable (0 unless pinned by a singleton row).
  std::vector<double> fixed_values;
  size_t num_fixed = 0;
  /// original eq row -> reduced eq row id, or -1 when presolve resolved
  /// the row (zero forcing / singleton / vacuous). Row order is
  /// preserved, so these maps carry dual multipliers between the
  /// original and reduced row spaces — the warm-start transport for
  /// cached re-analysis.
  std::vector<int64_t> eq_row_map;
  /// original ineq row -> reduced ineq row id, or -1 when resolved.
  std::vector<int64_t> ineq_row_map;

  /// Scatters a reduced-space solution into the full variable space.
  std::vector<double> Restore(const std::vector<double>& reduced_p) const;
};

Result<PresolvedProblem> Presolve(const MaxEntProblem& problem,
                                  double tol = 1e-12);

}  // namespace pme::maxent

#endif  // PME_MAXENT_PROBLEM_H_
