// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_SOLVER_H_
#define PME_MAXENT_SOLVER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "maxent/problem.h"

namespace pme::maxent {

/// Available dual minimizers. The paper's implementation uses LBFGS
/// (Nocedal [16]); GIS [8], IIS [20], steepest descent and Newton's method
/// are provided for the Malouf-style solver comparison ([18], Section 3.3).
enum class SolverKind : int {
  kLbfgs = 0,
  kGis = 1,
  kIis = 2,
  kSteepest = 3,
  kNewton = 4,
};

const char* SolverKindToString(SolverKind kind);

/// Tuning knobs common to all solvers.
struct SolverOptions {
  /// Iteration budget for the dual minimization. Iterations are cheap
  /// (two sparse matrix-vector products each); hard zero-targets in the
  /// knowledge need a deep tail of iterations to push multipliers far
  /// out, so the default budget is generous — accuracy experiments must
  /// never return a silently unconverged posterior.
  size_t max_iterations = 20000;
  /// Convergence threshold on ‖∇D‖∞ — i.e. the worst constraint
  /// violation of the primal iterate.
  double tolerance = 1e-8;
  /// LBFGS memory (number of (s, y) correction pairs).
  size_t lbfgs_history = 10;
  /// Backtracking line-search step budget.
  size_t max_line_search_steps = 60;
  /// Relative dual-value progress below which an accepted step counts as
  /// stalled: improvement <= ftol * (|D| + 1). Near numerical precision
  /// the Armijo test keeps accepting rounding-noise improvements; the
  /// stall counter turns that into a clean exit instead of burning the
  /// whole iteration budget a few ulps above the tolerance.
  double ftol = 1e-15;
  /// Consecutive stalled-but-accepted steps before the solve stops with
  /// the current iterate (converged iff the tolerance was already met).
  size_t max_stall_iterations = 50;
  /// Diagonal regularization for the Newton solver's Hessian.
  double newton_jitter = 1e-9;
  /// Run the structural presolve (zero forcing / singleton substitution)
  /// before the iterative solve. Strongly recommended: hard zeros in the
  /// constraints otherwise require unbounded multipliers.
  bool presolve = true;
  /// Dual dimension above which the dense Newton solver refuses to run.
  size_t newton_max_dim = 4000;
  /// Worker threads for the block-decomposed solve (SolveDecomposed):
  /// independent connected components are solved concurrently. 1 = serial;
  /// 0 = hardware concurrency. Results are identical for any value — the
  /// per-block solves and the scatter order are deterministic.
  size_t threads = 1;
  /// SolveDecomposed falls back to the monolithic Solve when the largest
  /// knowledge-coupled component covers more than this fraction of all
  /// variables: the decomposition would pay the full-matrix build plus a
  /// near-full Submatrix copy (measured 10-40% overhead in the K >= 256
  /// ablation) for no block-level parallelism. Set above 1.0 to always
  /// decompose.
  double monolithic_fallback_fraction = 0.8;
};

/// Outcome of a MaxEnt solve.
struct SolverResult {
  /// The maximum-entropy joint distribution over the *full* variable
  /// space (fixed variables restored).
  std::vector<double> p;
  /// Dual iterations actually performed.
  size_t iterations = 0;
  /// Final dual objective value (reduced problem).
  double dual_value = 0.0;
  /// Worst constraint violation at the returned solution.
  double max_violation = 0.0;
  /// Entropy −Σ p ln p of the returned solution (nats).
  double entropy = 0.0;
  /// Wall-clock seconds of the solve (excluding problem construction).
  double seconds = 0.0;
  /// True when the tolerance was met within the iteration budget.
  bool converged = false;
  /// Variables eliminated by presolve.
  size_t presolve_fixed = 0;
  /// True when SolveDecomposed routed this problem to the monolithic
  /// Solve because one coupled component dominated the variable space.
  bool used_monolithic_fallback = false;
  /// Which solver produced this result.
  SolverKind kind = SolverKind::kLbfgs;
};

/// Solves the MaxEnt problem with the chosen solver.
///
/// Equality-only problems use the requested `kind` directly. Problems with
/// inequality rows (Section 4.5 / Kazama–Tsujii) are solved by projected
/// gradient on the stacked dual with sign-constrained multipliers,
/// regardless of `kind` (GIS/IIS/Newton have no inequality variants here).
///
/// Returns kNotConverged (with the best iterate embedded in the message)
/// only for genuinely failed solves; hitting max_iterations with a small
/// residual still returns OK with `converged == false`.
Result<SolverResult> Solve(const MaxEntProblem& problem,
                           SolverKind kind = SolverKind::kLbfgs,
                           const SolverOptions& options = {});

}  // namespace pme::maxent

#endif  // PME_MAXENT_SOLVER_H_
