// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_SOLVER_H_
#define PME_MAXENT_SOLVER_H_

#include <limits>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "common/hash.h"
#include "common/status.h"
#include "maxent/problem.h"

namespace pme {
class ThreadPool;  // common/thread_pool.h
}

namespace pme::maxent {

/// Available dual minimizers. The paper's implementation uses LBFGS
/// (Nocedal [16]); GIS [8], IIS [20], steepest descent and Newton's method
/// are provided for the Malouf-style solver comparison ([18], Section 3.3).
/// kProjected is the Barzilai–Borwein projected-gradient solver — always
/// used for inequality problems, selectable for equality-only ones as
/// the fallback chain's restart rung (robust, no curvature memory to
/// poison).
enum class SolverKind : int {
  kLbfgs = 0,
  kGis = 1,
  kIis = 2,
  kSteepest = 3,
  kNewton = 4,
  kProjected = 5,
};

const char* SolverKindToString(SolverKind kind);

class SolutionCache;  // maxent/solution_cache.h

/// What SolveDecomposed may reuse from a SolutionCache:
///  - kOff: never consult the cache (it is not even read).
///  - kExact: scatter a cached solution when a component's constraint
///    rows are byte-identical to a previous solve; otherwise solve cold.
///  - kWarm: kExact, plus warm-start the dual of a component whose
///    variable set matches a cached entry but whose rows changed
///    (the single-statement-toggle case) from the cached multipliers.
/// Solutions are inserted under every mode except kOff.
enum class CacheMode : int {
  kOff = 0,
  kExact = 1,
  kWarm = 2,
};

const char* CacheModeToString(CacheMode mode);

/// How a component's answer relates to the solution cache this solve.
enum class CacheOutcome : int {
  kNone = 0,       ///< cache off, or a cold solve (miss)
  kExactHit = 1,   ///< cached solution scattered, no solve ran
  kWarmStart = 2,  ///< solved, dual warm-started from a cached entry
};

/// Tuning knobs common to all solvers.
struct SolverOptions {
  /// Iteration budget for the dual minimization. Iterations are cheap
  /// (two sparse matrix-vector products each); hard zero-targets in the
  /// knowledge need a deep tail of iterations to push multipliers far
  /// out, so the default budget is generous — accuracy experiments must
  /// never return a silently unconverged posterior.
  size_t max_iterations = 20000;
  /// Convergence threshold on ‖∇D‖∞ — i.e. the worst constraint
  /// violation of the primal iterate.
  double tolerance = 1e-8;
  /// LBFGS memory (number of (s, y) correction pairs).
  size_t lbfgs_history = 10;
  /// Backtracking line-search step budget.
  size_t max_line_search_steps = 60;
  /// Relative dual-value progress below which an accepted step counts as
  /// stalled: improvement <= ftol * (|D| + 1). Near numerical precision
  /// the Armijo test keeps accepting rounding-noise improvements; the
  /// stall counter turns that into a clean exit instead of burning the
  /// whole iteration budget a few ulps above the tolerance.
  double ftol = 1e-15;
  /// Consecutive stalled-but-accepted steps before the solve stops with
  /// the current iterate (converged iff the tolerance was already met).
  size_t max_stall_iterations = 50;
  /// Diagonal regularization for the Newton solver's Hessian.
  double newton_jitter = 1e-9;
  /// Run the structural presolve (zero forcing / singleton substitution)
  /// before the iterative solve. Strongly recommended: hard zeros in the
  /// constraints otherwise require unbounded multipliers.
  bool presolve = true;
  /// Dual dimension above which the dense Newton solver refuses to run.
  size_t newton_max_dim = 4000;
  /// Worker threads for the block-decomposed solve (SolveDecomposed):
  /// independent connected components are solved concurrently. 1 = serial;
  /// 0 = hardware concurrency. Results are identical for any value — the
  /// per-block solves and the scatter order are deterministic.
  size_t threads = 1;
  /// Shared worker pool for the block-decomposed solve. When set,
  /// SolveDecomposed schedules its block tasks on this pool (batch
  /// semantics: only this solve's blocks are awaited) instead of
  /// spinning a private pool from `threads` — the serving path, where
  /// many concurrent requests must share one fixed set of solver
  /// threads. Not owned; must outlive the solve. `threads` is ignored
  /// for scheduling when set.
  ThreadPool* pool = nullptr;
  /// SolveDecomposed falls back to the monolithic Solve when the largest
  /// knowledge-coupled component covers more than this fraction of all
  /// variables: the decomposition would pay the full-matrix build plus a
  /// near-full Submatrix copy (measured 10-40% overhead in the K >= 256
  /// ablation) for no block-level parallelism. Set above 1.0 to always
  /// decompose.
  double monolithic_fallback_fraction = 0.8;
  /// Wall-clock budget for the solve, checked once per outer iteration
  /// by every minimizer. On expiry the solve stops and returns the best
  /// iterate reached so far with termination == kDeadlineExceeded —
  /// never an empty-handed error. Infinite (never expires) by default.
  /// SolveDecomposed additionally derives per-component sub-deadlines
  /// from this budget, proportional to component size.
  Deadline deadline;
  /// Cooperative cancellation, checked together with the deadline each
  /// iteration (termination == kCancelled, best-so-far returned).
  CancellationToken cancel;
  /// Optional warm start for the dual multipliers, in the reduced
  /// (post-presolve) row space. Ignored when the size does not match the
  /// reduced dual dimension or any entry is non-finite. Not owned; must
  /// outlive the Solve call. Used by the fallback chain to restart the
  /// next rung from the best point so far, and by warm-started
  /// re-analysis.
  const std::vector<double>* warm_start = nullptr;
  /// Like `warm_start`, but in the problem's *original* stacked row
  /// space — equality rows first (matrix row order), inequality rows
  /// after — before presolve. Solve maps it through the presolve row
  /// maps into the reduced dual space, so a warm start survives a
  /// *different* presolve than the one that produced it (the cached
  /// re-analysis case: an edited component drops/keeps different rows).
  /// Ignored when the size does not match eq.rows() + ineq.rows(), any
  /// entry is non-finite, or `warm_start` is also set (the reduced-space
  /// start is more specific and wins). Not owned; must outlive Solve.
  const std::vector<double>* warm_start_original = nullptr;
  /// Optional precomputed Theorem-5 prior for SolveDecomposed: must be
  /// exactly ClosedFormNoKnowledge(table, index) of the table/index the
  /// solve runs over (the artifact-serving path precomputes it once per
  /// table). When set and correctly sized, the solve copies it instead
  /// of re-deriving the closed form per call — byte-identical result,
  /// O(table) work saved on every request. Not owned; must outlive the
  /// call. Ignored by the monolithic Solve.
  const std::vector<double>* closed_form_prior = nullptr;
  /// Entropy of `closed_form_prior` (as computed by pme::Entropy), when
  /// the caller precomputed it. Lets SolveDecomposed derive the result
  /// entropy by adjusting only the coupled-block coordinates instead of
  /// an O(variables) log pass. NaN (the default) disables the shortcut;
  /// ignored unless `closed_form_prior` is set and used.
  double closed_form_prior_entropy =
      std::numeric_limits<double>::quiet_NaN();
  /// Component-solution cache consulted by SolveDecomposed (see
  /// maxent/solution_cache.h). Not owned; null disables caching
  /// regardless of `cache_mode`. The monolithic path (Solve, or the
  /// monolithic fallback) never consults the cache — there is no
  /// component granularity to key on.
  SolutionCache* solution_cache = nullptr;
  /// What to reuse from `solution_cache` (off | exact | warm).
  CacheMode cache_mode = CacheMode::kWarm;
  /// Namespace mixed into every solution-cache key, exact and warm.
  /// Callers sharing one SolutionCache across different tables — the
  /// artifact-serving path — set this to the table artifact's content
  /// hash so two tables that happen to produce colliding block digests
  /// can never serve each other's solutions. The default (zero) keeps
  /// all single-table callers in one namespace.
  Hash128 cache_namespace{};
  /// SolveDecomposed: when a component's solve fails (non-finite
  /// iterate, injected fault, deadline, hard error), walk it down the
  /// degradation ladder — projected-gradient restart from best-so-far,
  /// then iterative scaling, then the closed-form no-knowledge prior —
  /// instead of failing the whole analysis. Off restores fail-fast
  /// propagation of the first component error.
  bool fallback = true;
  /// Iterative rungs tried per component (the requested solver counts as
  /// the first) before degrading to the closed-form prior.
  size_t max_fallback_attempts = 3;
  /// A fallback rung's answer is accepted when it converged, or when its
  /// worst constraint violation is at or below this bound (a solve that
  /// exhausted its budget a few ulps above `tolerance` is still a
  /// perfectly good posterior).
  double fallback_accept_violation = 1e-6;
};

/// Per-component record of the decomposed solve's fallback ladder.
struct ComponentOutcome {
  /// Dense index of the coupled block (matches the decomposition's
  /// block numbering; uncoupled closed-form components are not listed —
  /// they are exact by Theorem 5 and cannot fail).
  uint32_t block = 0;
  /// Variables in the block.
  size_t num_variables = 0;
  /// The solver rung that produced the accepted answer (meaningless when
  /// `used_prior`).
  SolverKind solver = SolverKind::kLbfgs;
  /// Terminal status of the accepted (or last attempted) rung: kOk,
  /// kDeadlineExceeded, kCancelled, kNumericalError, or a hard error
  /// code.
  StatusCode status = StatusCode::kOk;
  /// Solve attempts consumed, requested solver included.
  size_t attempts = 0;
  /// True when the answer came from below the requested solver (a lower
  /// rung or the prior).
  bool degraded = false;
  /// True when every iterative rung failed and the block kept the
  /// closed-form no-knowledge prior — the component's answer ignores its
  /// knowledge constraints and overstates privacy for those buckets.
  bool used_prior = false;
  /// Dual iterations this block's solve performed (0 for an exact cache
  /// hit — no solve ran). The warm-vs-cold iteration reduction of the
  /// incremental-reanalysis bench is measured from exactly this field.
  size_t iterations = 0;
  /// Wall-clock seconds of this block's solve (slicing + solve; for an
  /// exact hit, just the scatter bookkeeping).
  double seconds = 0.0;
  /// Cache relationship of this block's answer.
  CacheOutcome cache = CacheOutcome::kNone;
};

/// Outcome of a MaxEnt solve.
struct SolverResult {
  /// The maximum-entropy joint distribution over the *full* variable
  /// space (fixed variables restored).
  std::vector<double> p;
  /// Dual iterations actually performed.
  size_t iterations = 0;
  /// Final dual objective value (reduced problem).
  double dual_value = 0.0;
  /// Worst constraint violation at the returned solution.
  double max_violation = 0.0;
  /// Entropy −Σ p ln p of the returned solution (nats).
  double entropy = 0.0;
  /// Wall-clock seconds of the solve (excluding problem construction).
  double seconds = 0.0;
  /// True when the tolerance was met within the iteration budget.
  bool converged = false;
  /// Variables eliminated by presolve.
  size_t presolve_fixed = 0;
  /// True when SolveDecomposed routed this problem to the monolithic
  /// Solve because one coupled component dominated the variable space.
  bool used_monolithic_fallback = false;
  /// Which solver produced this result.
  SolverKind kind = SolverKind::kLbfgs;
  /// Why the solve stopped: kOk for a normal finish (converged or budget
  /// exhausted with a finite iterate), kDeadlineExceeded / kCancelled
  /// when interrupted (p is the best iterate so far), kNumericalError
  /// when the returned point is non-finite.
  StatusCode termination = StatusCode::kOk;
  /// The dual multipliers of the reduced (post-presolve) problem — the
  /// warm-start payload for SolverOptions::warm_start. Populated by
  /// every solver kind, converged or not (iterative scaling included).
  /// Empty for decomposed solves (block duals do not concatenate
  /// meaningfully; per-block duals live in the solution cache).
  std::vector<double> dual_lambda;
  /// The same multipliers scattered back to the *original* stacked row
  /// space (equality rows first, then inequality rows; presolve-dropped
  /// rows at 0) — the payload for SolverOptions::warm_start_original and
  /// the form the solution cache stores. Empty for decomposed solves.
  std::vector<double> dual_lambda_full;
  /// True when any part of the answer was produced below the requested
  /// solver (fallback rung or closed-form prior).
  bool degraded = false;
  /// Decomposed-solve census over *coupled* components: answered by the
  /// requested solver / degraded to a lower rung or the prior / hard
  /// failure (kept prior, counted separately). All zero for monolithic
  /// solves.
  size_t components_solved = 0;
  size_t components_degraded = 0;
  size_t components_failed = 0;
  /// One record per coupled component (empty for monolithic solves).
  std::vector<ComponentOutcome> component_outcomes;
  /// Solution-cache census of *this* solve (all zero when no cache was
  /// consulted): blocks answered from the cache without solving, blocks
  /// solved with a warm-started dual, and blocks solved cold.
  size_t cache_exact_hits = 0;
  size_t cache_warm_hits = 0;
  size_t cache_misses = 0;
  /// True when a SolutionCache was consulted (drives report rendering).
  bool cache_enabled = false;
  /// Cache-wide census snapshot taken after this solve's insertions.
  size_t cache_entries = 0;
  size_t cache_evictions = 0;
  size_t cache_resident_doubles = 0;
};

/// Solves the MaxEnt problem with the chosen solver.
///
/// Equality-only problems use the requested `kind` directly. Problems with
/// inequality rows (Section 4.5 / Kazama–Tsujii) are solved by projected
/// gradient on the stacked dual with sign-constrained multipliers,
/// regardless of `kind` (GIS/IIS/Newton have no inequality variants here).
///
/// Returns kNotConverged (with the best iterate embedded in the message)
/// only for genuinely failed solves; hitting max_iterations with a small
/// residual still returns OK with `converged == false`.
Result<SolverResult> Solve(const MaxEntProblem& problem,
                           SolverKind kind = SolverKind::kLbfgs,
                           const SolverOptions& options = {});

/// Accepts `result` as an answer: a normal termination that either met
/// the tolerance or left a violation within fallback_accept_violation.
bool IsAcceptable(const SolverResult& result, const SolverOptions& options);

/// The per-problem degradation ladder used by SolveDecomposed: the
/// requested solver first, then a projected-gradient restart warm-started
/// from the best dual point so far, then GIS — bounded by
/// options.max_fallback_attempts and options.deadline. Returns the first
/// acceptable rung's result (`degraded` set when it was not the first
/// rung). When no rung is acceptable, returns the finite attempt with the
/// smallest violation, its `termination` explaining why (recoverable
/// failures never surface as an error Status; hard errors from every rung
/// do). `attempts`, when non-null, receives the number of rungs tried.
Result<SolverResult> SolveWithFallback(const MaxEntProblem& problem,
                                       SolverKind kind,
                                       const SolverOptions& options,
                                       size_t* attempts = nullptr);

}  // namespace pme::maxent

#endif  // PME_MAXENT_SOLVER_H_
