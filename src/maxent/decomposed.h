// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_DECOMPOSED_H_
#define PME_MAXENT_DECOMPOSED_H_

#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "maxent/solver.h"

namespace pme::maxent {

/// The Section 5.5 optimization: buckets *irrelevant* to the background
/// knowledge (Definition 5.6) are independent of everything else
/// (Lemma 2), so their maximum entropy is the Theorem-5 closed form and
/// only the knowledge-coupled buckets need the iterative solver.
///
/// Equivalent to `Solve` on the full system (Proposition 1), but the
/// iterative problem shrinks to the relevant buckets — on Figure-7-style
/// workloads where knowledge touches a small fraction of buckets this is
/// the difference between seconds and minutes.
///
/// The returned SolverResult's `p` covers the full variable space;
/// `iterations`/`seconds` describe the reduced iterative solve.
Result<SolverResult> SolveDecomposed(const anonymize::BucketizedTable& table,
                                     const constraints::TermIndex& index,
                                     const constraints::ConstraintSystem& system,
                                     SolverKind kind = SolverKind::kLbfgs,
                                     const SolverOptions& options = {});

/// Statistics of the decomposition (for the ablation bench).
struct DecompositionStats {
  size_t relevant_buckets = 0;
  size_t irrelevant_buckets = 0;
  size_t relevant_variables = 0;
  size_t total_variables = 0;
};

DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system);

}  // namespace pme::maxent

#endif  // PME_MAXENT_DECOMPOSED_H_
