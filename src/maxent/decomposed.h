// Copyright 2026 The Privacy-MaxEnt Reproduction Authors.
// Licensed under the Apache License, Version 2.0.

#ifndef PME_MAXENT_DECOMPOSED_H_
#define PME_MAXENT_DECOMPOSED_H_

#include "anonymize/bucketized_table.h"
#include "common/status.h"
#include "constraints/component_analysis.h"
#include "constraints/system.h"
#include "constraints/term_index.h"
#include "maxent/solver.h"

namespace pme::maxent {

/// The Section 5.5 optimization, taken one step further: buckets
/// *irrelevant* to the background knowledge (Definition 5.6) keep the
/// Theorem-5 closed form (Lemma 2), and the *relevant* set is split into
/// independent connected components (constraints::ComponentAnalysis) —
/// the constraint matrix is block-diagonal across components, so each
/// block is solved as its own, much smaller dual problem. Blocks run in
/// parallel when `options.threads > 1`; the result is identical for any
/// thread count (per-block solves are deterministic and scatter into
/// disjoint variable ranges).
///
/// Equivalent to `Solve` on the full system (Proposition 1; the dual
/// separates because components share no variables), but on
/// Figure-7-style workloads where knowledge touches a small fraction of
/// buckets this is the difference between one O(n) dual and many O(n_k)
/// duals — seconds vs minutes.
///
/// The returned SolverResult's `p` covers the full variable space;
/// `iterations` sums the block solves and `seconds` is the wall time of
/// the whole decomposed pipeline.
///
/// Failure semantics: with `options.fallback` on (the default), each
/// block runs the SolveWithFallback ladder under a wall-time budget
/// proportional to its variable count (a slice of `options.deadline`).
/// A block that ends unacceptable but made real progress keeps its best
/// finite iterate (the contract non-converged solves always had); a
/// block with no usable iterate — poisoned numerics, a thrown task, a
/// budget spent before the first iteration — keeps its
/// closed-form no-knowledge prior. Both are reported in
/// `component_outcomes` / `components_{solved,degraded,failed}`; the
/// call still returns Ok with `degraded = true`, so one bad component
/// never sinks the whole analysis. `termination` is kCancelled when the
/// token fired, kDeadlineExceeded when the request deadline is spent.
/// With `fallback` off, the historical fail-fast contract stands: the
/// first block error propagates as the call's Status.
/// `precomputed`, when non-null, is the ComponentAnalysis of `system`
/// over `index` (typically ComponentAnalysis::Extend of a table
/// artifact's invariants-only base) and must match what
/// ComponentAnalysis::Build(index, system) would produce; the solve
/// then skips its own union-find pass. Not owned; must outlive the
/// call. Scheduling: `options.pool`, when set, hosts the block tasks
/// (shared-pool serving); otherwise a private pool of `options.threads`
/// workers is spun per call.
Result<SolverResult> SolveDecomposed(
    const anonymize::BucketizedTable& table,
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system,
    SolverKind kind = SolverKind::kLbfgs, const SolverOptions& options = {},
    const constraints::ComponentAnalysis* precomputed = nullptr);

/// Statistics of the decomposition (for the ablation bench).
struct DecompositionStats {
  size_t relevant_buckets = 0;    ///< buckets inside coupled components
  size_t irrelevant_buckets = 0;  ///< closed-form buckets
  size_t relevant_variables = 0;
  size_t total_variables = 0;
  /// Component census: total blocks, knowledge-coupled blocks, and the
  /// variable count of every coupled block (for size histograms).
  size_t num_components = 0;
  size_t num_coupled_components = 0;
  std::vector<size_t> coupled_component_variables;
  /// Per-coupled-block solve effort of the *last* decomposed solve, in
  /// block-id order (dual iterations and wall seconds; 0 / ~0 for exact
  /// cache hits). Filled by the pipeline from
  /// SolverResult::component_outcomes — AnalyzeDecomposition alone leaves
  /// them empty (it never solves).
  std::vector<size_t> coupled_component_iterations;
  std::vector<double> coupled_component_seconds;
};

/// `precomputed` as in SolveDecomposed: a caller that already holds the
/// ComponentAnalysis of (index, system) passes it to skip the pass.
DecompositionStats AnalyzeDecomposition(
    const constraints::TermIndex& index,
    const constraints::ConstraintSystem& system,
    const constraints::ComponentAnalysis* precomputed = nullptr);

}  // namespace pme::maxent

#endif  // PME_MAXENT_DECOMPOSED_H_
