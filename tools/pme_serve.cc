// pme_serve — standalone Privacy-MaxEnt analyze server.
//
// Identical to `pme serve` (the pme_cli subcommand); a separate binary
// so deployments can ship the server without the synth/mine/analyze
// tooling.
//
//   pme_serve --records=2000 --ell=5 --port=7321 --threads=8
//   pme_serve --data=adult.csv --sensitive=education --deadline-ms=500

#include "common/flags.h"
#include "serve/serve_main.h"

int main(int argc, char** argv) {
  pme::Flags flags(argc, argv);
  return pme::serve::ServeMain(flags);
}
