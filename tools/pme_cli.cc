// pme — command-line front end for the Privacy-MaxEnt library.
//
// Subcommands:
//   synth    generate the synthetic Adult-like benchmark CSV
//   mine     mine the strongest association rules from a CSV
//   analyze  bucketize a CSV, apply a knowledge file, and quantify privacy
//   serve    load one table artifact and serve JSON analyze requests
//   help     print the usage synopsis
//
// Examples:
//   pme synth --records=14210 --out=adult.csv
//   pme mine --data=adult.csv --sensitive=education --top=20
//   pme analyze --data=adult.csv --sensitive=education --ell=5
//       --knowledge=knowledge.txt --report=report.txt
//   pme serve --data=adult.csv --sensitive=education --port=7321
//
// Knowledge files use the statement language of knowledge/parser.h, e.g.:
//   P(breast-cancer | gender=male) = 0
//   P(flu | gender=male) = 0.3

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "anonymize/anatomy.h"
#include "anonymize/bucketized_table.h"
#include "common/arena.h"
#include "common/deadline.h"
#include "common/flags.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "common/vec_math.h"
#include "core/privacy_maxent.h"
#include "core/report.h"
#include "data/adult_synth.h"
#include "data/csv.h"
#include "core/analysis_session.h"
#include "core/table_artifact.h"
#include "knowledge/miner.h"
#include "knowledge/parser.h"
#include "maxent/solution_cache.h"
#include "serve/serve_main.h"

namespace {

void PrintUsage(std::FILE* out) {
  std::fprintf(out,
               "usage: pme <synth|mine|analyze|serve|help> [--flags]\n"
               "  synth    --records=N --out=FILE [--seed=S]\n"
               "  mine     --data=FILE --sensitive=ATTR [--top=N]\n"
               "           [--minsupport=N] [--maxattrs=T]\n"
               "  analyze  --data=FILE --sensitive=ATTR [--ell=L]\n"
               "           [--knowledge=FILE] [--solver=lbfgs|gis|iis|"
               "steepest|newton|projected]\n"
               "           [--threads=N] [--simd=off|avx2|avx512|auto] "
               "[--arena=on|off]\n"
               "           [--deadline-ms=N] [--fallback=on|off]\n"
               "           [--cache=off|exact|warm] [--cache-mb=N] "
               "[--repeat=N]\n"
               "           [--report=FILE] [--posterior=FILE]\n"
               "           [--metrics-out=FILE] [--trace-out=FILE]\n"
               "  serve    [--data=FILE --sensitive=ATTR | --records=N] "
               "[--ell=L]\n"
               "           [--host=ADDR] [--port=N] [--threads=N] "
               "[--deadline-ms=N]\n"
               "           [--solver=...] [--cache=off|exact|warm] "
               "[--cache-mb=N]\n"
               "           [--max-connections=N] "
               "[--metrics-out=FILE] [--trace-out=FILE]\n"
               "  help     print this synopsis\n"
               "\n"
               "--metrics-out dumps the metrics registry as JSON at exit;\n"
               "--trace-out dumps recorded spans as Chrome trace-event JSON\n"
               "(load in chrome://tracing or https://ui.perfetto.dev).\n");
}

int Usage() {
  PrintUsage(stderr);
  return 2;
}

int Fail(const pme::Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

/// Honors --metrics-out / --trace-out: dumps the registry JSON and a
/// loadable Chrome trace of every recorded span. Called on the way out
/// of the subcommands that run solves.
void DumpObservability(const pme::Flags& flags) {
  const std::string metrics_path = flags.GetString("metrics-out", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    if (out) {
      out << pme::metrics::Registry::Global().RenderJson() << "\n";
      std::printf("metrics written to %s\n", metrics_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", metrics_path.c_str());
    }
  }
  const std::string trace_path = flags.GetString("trace-out", "");
  if (!trace_path.empty()) {
    if (pme::trace::WriteChromeTrace(trace_path)) {
      std::printf("trace written to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error: cannot open %s\n", trace_path.c_str());
    }
  }
}

pme::Result<pme::data::Dataset> LoadData(const pme::Flags& flags) {
  const std::string path = flags.GetString("data", "");
  if (path.empty()) {
    return pme::Status::InvalidArgument("--data=FILE is required");
  }
  pme::data::CsvReadOptions options;
  const std::string sensitive = flags.GetString("sensitive", "");
  if (sensitive.empty()) {
    return pme::Status::InvalidArgument("--sensitive=ATTR is required");
  }
  options.sensitive_attributes = {sensitive};
  for (const auto& id : pme::Split(flags.GetString("id", ""), ',')) {
    if (!id.empty()) options.identifier_attributes.emplace_back(id);
  }
  return pme::data::ReadCsv(path, options);
}

int RunSynth(const pme::Flags& flags) {
  pme::data::AdultSynthOptions options;
  options.num_records = static_cast<size_t>(flags.GetInt("records", 14210));
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 20080612));
  const std::string out = flags.GetString("out", "adult_like.csv");
  auto dataset = pme::data::GenerateAdultLike(options);
  if (!dataset.ok()) return Fail(dataset.status());
  if (auto s = pme::data::WriteCsv(dataset.value(), out); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu records to %s\n", dataset.value().num_records(),
              out.c_str());
  return 0;
}

int RunMine(const pme::Flags& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());
  pme::knowledge::MinerOptions options;
  options.min_support_records =
      static_cast<size_t>(flags.GetInt("minsupport", 3));
  options.max_attrs = static_cast<size_t>(flags.GetInt("maxattrs", 3));
  auto rules =
      pme::knowledge::MineAssociationRules(dataset.value(), options);
  if (!rules.ok()) return Fail(rules.status());
  const size_t top = static_cast<size_t>(flags.GetInt("top", 20));
  auto selected = pme::knowledge::TopK(rules.value(), top, top);
  std::printf("%zu rules mined; top %zu per polarity:\n",
              rules.value().size(), top);
  for (const auto& r : selected) {
    std::printf("  %s\n", r.ToString(dataset.value()).c_str());
  }
  return 0;
}

pme::Result<pme::maxent::SolverKind> ParseSolver(const std::string& name) {
  using pme::maxent::SolverKind;
  if (name == "lbfgs") return SolverKind::kLbfgs;
  if (name == "gis") return SolverKind::kGis;
  if (name == "iis") return SolverKind::kIis;
  if (name == "steepest") return SolverKind::kSteepest;
  if (name == "newton") return SolverKind::kNewton;
  if (name == "projected") return SolverKind::kProjected;
  return pme::Status::InvalidArgument("unknown solver: " + name);
}

int RunAnalyze(const pme::Flags& flags) {
  auto dataset = LoadData(flags);
  if (!dataset.ok()) return Fail(dataset.status());

  pme::anonymize::AnatomyOptions anatomy;
  anatomy.ell = static_cast<size_t>(flags.GetInt("ell", 5));
  auto partition = pme::anonymize::AnatomyPartition(dataset.value(), anatomy);
  if (!partition.ok()) return Fail(partition.status());
  auto bz = pme::anonymize::BucketizeDataset(dataset.value(),
                                             partition.value());
  if (!bz.ok()) return Fail(bz.status());

  pme::knowledge::KnowledgeBase kb;
  const std::string knowledge_path = flags.GetString("knowledge", "");
  if (!knowledge_path.empty()) {
    std::ifstream in(knowledge_path);
    if (!in) {
      return Fail(pme::Status::IoError("cannot open " + knowledge_path));
    }
    std::ostringstream text;
    text << in.rdbuf();
    pme::knowledge::ParserContext context;
    context.dataset = &dataset.value();
    if (auto s = pme::knowledge::ParseKnowledge(text.str(), context, &kb);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("loaded %zu knowledge statements from %s\n", kb.size(),
                knowledge_path.c_str());
  }

  pme::core::AnalysisOptions options;
  auto solver = ParseSolver(flags.GetString("solver", "lbfgs"));
  if (!solver.ok()) return Fail(solver.status());
  options.solver = solver.value();
  // Independent knowledge components are solved in parallel; 0 = all
  // hardware threads, 1 (default) = serial. The result is identical for
  // any value.
  options.solver_options.threads =
      static_cast<size_t>(flags.GetInt("threads", 1));
  // Kernel dispatch: auto picks the widest tier the CPU supports
  // (AVX-512 > AVX2+FMA > scalar); forcing a missing tier falls back
  // down that ladder. Posteriors agree to ~1e-10 across all modes.
  pme::kernels::SetSimdMode(
      pme::kernels::ParseSimdMode(flags.GetString("simd", "auto")));
  // Per-block scratch arena for the decomposed solve; off is the
  // heap-allocation A/B control (PME_ARENA=off is the env equivalent).
  const std::string arena_flag = flags.GetString("arena", "on");
  if (arena_flag != "on" && arena_flag != "off") {
    return Fail(pme::Status::InvalidArgument(
        "--arena must be 'on' or 'off', got '" + arena_flag + "'"));
  }
  pme::Arena::SetEnabled(arena_flag == "on");
  // Wall-time budget for the whole solve. Components that run out of
  // their share degrade to cheaper solvers or the closed-form prior
  // rather than aborting the analysis (see --fallback).
  const long long deadline_ms = flags.GetInt("deadline-ms", 0);
  if (deadline_ms > 0) {
    options.solver_options.deadline = pme::Deadline::AfterMillis(
        static_cast<int64_t>(deadline_ms));
  }
  const std::string fallback = flags.GetString("fallback", "on");
  if (fallback != "on" && fallback != "off") {
    return Fail(pme::Status::InvalidArgument(
        "--fallback must be 'on' or 'off', got '" + fallback + "'"));
  }
  options.solver_options.fallback = fallback == "on";

  // Component-solution cache: off disables it, exact reuses byte-identical
  // component solves, warm (default) additionally warm-starts edited
  // components. Within one `pme analyze` the cache only pays off with
  // --repeat, which re-runs the analysis against the same cache — the
  // measurement mode for incremental re-analysis (round 2+ should be
  // answered almost entirely from the cache).
  const std::string cache_flag = flags.GetString("cache", "warm");
  pme::maxent::CacheMode cache_mode;
  if (cache_flag == "off") {
    cache_mode = pme::maxent::CacheMode::kOff;
  } else if (cache_flag == "exact") {
    cache_mode = pme::maxent::CacheMode::kExact;
  } else if (cache_flag == "warm") {
    cache_mode = pme::maxent::CacheMode::kWarm;
  } else {
    return Fail(pme::Status::InvalidArgument(
        "--cache must be 'off', 'exact' or 'warm', got '" + cache_flag +
        "'"));
  }
  const long long cache_mb = flags.GetInt("cache-mb", 64);
  pme::maxent::SolutionCache cache(
      static_cast<size_t>(cache_mb > 0 ? cache_mb : 1) << 20);
  options.solver_options.cache_mode = cache_mode;
  if (cache_mode != pme::maxent::CacheMode::kOff) {
    options.solver_options.solution_cache = &cache;
  }

  // Build the immutable table artifact once — TermIndex, invariants,
  // component base — and run every round as a session against it, so
  // --repeat measures exactly the per-request cost an artifact-holding
  // server pays.
  pme::core::TableArtifactOptions artifact_options;
  artifact_options.invariant_options = options.invariant_options;
  artifact_options.threads = options.solver_options.threads;
  auto artifact = pme::core::TableArtifact::BuildBorrowed(
      bz.value().table, &bz.value().qi_encoder, artifact_options);
  if (!artifact.ok()) return Fail(artifact.status());
  const pme::core::AnalysisSession session(artifact.value(), options);

  const long long repeat = flags.GetInt("repeat", 1);
  pme::Result<pme::core::Analysis> analysis =
      pme::Status::Internal("analysis never ran");
  for (long long round = 0; round < std::max(repeat, 1LL); ++round) {
    // One top-level span per round, so a --repeat run with --trace-out
    // opens in chrome://tracing as a timeline of rounds.
    pme::trace::TraceSpan round_span("analysis_round", "cli");
    round_span.AddArg("round", static_cast<double>(round + 1));
    analysis = session.Run(kb);
    if (!analysis.ok()) return Fail(analysis.status());
    if (repeat > 1) {
      const auto& solver = analysis.value().solver;
      std::printf(
          "round %lld: solve %.4f s, %zu iterations, cache %zu exact / %zu "
          "warm / %zu cold\n",
          round + 1, solver.seconds, solver.iterations,
          solver.cache_exact_hits, solver.cache_warm_hits,
          solver.cache_misses);
    }
  }

  pme::core::ReportOptions report_options;
  report_options.top_risks =
      static_cast<size_t>(flags.GetInt("toprisks", 10));
  const std::string report = pme::core::RenderPrivacyReport(
      bz.value().table, analysis.value(), report_options);

  const std::string report_path = flags.GetString("report", "");
  if (report_path.empty()) {
    std::fputs(report.c_str(), stdout);
  } else {
    std::ofstream out(report_path);
    out << report;
    std::printf("report written to %s\n", report_path.c_str());
  }

  const std::string posterior_path = flags.GetString("posterior", "");
  if (!posterior_path.empty()) {
    std::ofstream out(posterior_path);
    out << pme::core::PosteriorToCsv(bz.value().table, analysis.value());
    std::printf("posterior written to %s\n", posterior_path.c_str());
  }
  DumpObservability(flags);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  pme::Flags flags(argc, argv);
  if (command == "synth") return RunSynth(flags);
  if (command == "mine") return RunMine(flags);
  if (command == "analyze") return RunAnalyze(flags);
  if (command == "serve") return pme::serve::ServeMain(flags);
  if (command == "help" || command == "--help" || command == "-h") {
    PrintUsage(stdout);
    return 0;
  }
  std::fprintf(stderr, "pme: unknown subcommand '%s'\n", command.c_str());
  return Usage();
}
